#include "common/flags.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.hpp"

namespace nc {

namespace {

bool looks_like_flag(const std::string& s) {
  return s.size() > 2 && s[0] == '-' && s[1] == '-';
}

}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  NC_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    NC_CHECK_MSG(looks_like_flag(arg), "expected --flag, got: " + arg);
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare switch
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double Flags::get_double(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  NC_CHECK_MSG(end != nullptr && *end == '\0', "bad double for --" + name);
  return v;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  NC_CHECK_MSG(end != nullptr && *end == '\0', "bad integer for --" + name);
  return v;
}

bool Flags::get_bool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  NC_CHECK_MSG(false, "bad boolean for --" + name);
  return default_value;
}

std::vector<double> Flags::get_double_list(
    const std::string& name, const std::vector<double>& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  std::vector<double> out;
  std::stringstream ss(it->second);
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double v = std::strtod(item.c_str(), &end);
    NC_CHECK_MSG(end != nullptr && *end == '\0' && !item.empty(),
                 "bad list element for --" + name);
    out.push_back(v);
  }
  return out;
}

std::vector<std::string> Flags::unknown_flags(
    const std::vector<std::string>& allowed) const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_)  // map order => sorted
    if (std::find(allowed.begin(), allowed.end(), name) == allowed.end())
      out.push_back(name);
  return out;
}

void Flags::check_known(const std::vector<std::string>& allowed) const {
  const std::vector<std::string> unknown = unknown_flags(allowed);
  if (unknown.empty()) return;
  std::string msg = "unknown flag";
  if (unknown.size() > 1) msg += 's';
  for (const std::string& name : unknown) msg += " --" + name;
  throw CheckError(msg);
}

std::string Flags::usage(const std::string& program,
                         const std::vector<std::string>& allowed) {
  std::string out = "usage: " + program;
  for (const std::string& name : allowed) out += " [--" + name + "=<value>]";
  return out;
}

Flags Flags::parse_or_exit(int argc, const char* const* argv,
                           const std::vector<std::string>& allowed) {
  const std::string program = argc >= 1 ? argv[0] : "prog";
  try {
    Flags flags(argc, argv);
    flags.check_known(allowed);
    return flags;
  } catch (const CheckError& e) {
    std::cerr << e.what() << '\n' << usage(program, allowed) << '\n';
    std::exit(2);
  }
}

}  // namespace nc

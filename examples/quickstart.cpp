// Quickstart: build a network coordinate system with NCClient and estimate
// an RTT between two nodes that never measured each other directly.
//
// The snippet drives 32 clients from a synthetic latency network (in a real
// deployment you would call observe() with your own ping measurements). Each
// node samples a few random peers per second; after a couple of simulated
// minutes, coordinate distances predict RTTs between *any* pair.
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/nc_client.hpp"
#include "latency/link_model.hpp"

using namespace nc;

int main() {
  // 1. The coordinate subsystem configuration: the paper's recommended
  //    MP(4,25) filter and ENERGY(tau=8, window=32) application updates are
  //    the defaults; we only pin the dimensionality for clarity.
  NCClientConfig config;
  config.vivaldi.dim = 3;

  const int n = 32;
  std::vector<NCClient> nodes;
  nodes.reserve(n);
  for (NodeId id = 0; id < n; ++id) nodes.emplace_back(id, config);

  // 2. A stand-in for the real world: a synthetic latency network. Your
  //    deployment would instead measure RTTs with pings or piggybacked
  //    timestamps.
  lat::TopologyConfig topo;
  topo.num_nodes = n;
  topo.seed = 42;
  lat::LatencyNetwork network(lat::Topology::make(topo), lat::LinkModelConfig{},
                              lat::AvailabilityConfig{.enabled = false}, 42);

  // 3. Feed observations: each second every node measures two random peers
  //    and hands the sample plus the peer's advertised state to observe().
  Rng rng(7);
  for (int second = 0; second < 180; ++second) {
    const double t = static_cast<double>(second);
    for (NodeId id = 0; id < n; ++id) {
      for (int k = 0; k < 2; ++k) {
        const auto peer = static_cast<NodeId>(rng.uniform_int(n - 1));
        const NodeId target = peer >= id ? peer + 1 : peer;
        const auto rtt = network.sample_rtt(id, target, t);
        if (!rtt.has_value()) continue;  // lost ping
        NCClient& remote = nodes[static_cast<std::size_t>(target)];
        nodes[static_cast<std::size_t>(id)].observe(
            target, remote.system_coordinate(), remote.error_estimate(), *rtt, t);
      }
    }
  }

  // 4. Estimate the RTT between nodes 3 and 29 from coordinates alone and
  //    compare it against the (normally unknowable) ground truth.
  const NCClient& a = nodes[3];
  const NCClient& b = nodes[29];
  const double predicted =
      a.application_coordinate().distance_to(b.application_coordinate());
  const double actual = network.ground_truth_rtt(3, 29, 181.0);

  std::printf("node 3  confidence %.2f, coordinate ", a.confidence());
  std::printf("(%.1f, %.1f, %.1f)\n", a.application_coordinate().position()[0],
              a.application_coordinate().position()[1],
              a.application_coordinate().position()[2]);
  std::printf("node 29 confidence %.2f\n", b.confidence());
  std::printf("predicted RTT 3<->29: %.1f ms (ground truth %.1f ms, error %.0f%%)\n",
              predicted, actual, 100.0 * std::fabs(predicted - actual) / actual);
  std::printf("application-coordinate updates on node 3: %llu of %llu samples\n",
              static_cast<unsigned long long>(a.app_update_count()),
              static_cast<unsigned long long>(a.observation_count()));
  return 0;
}

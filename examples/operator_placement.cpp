// Stream-operator placement — the authors' own motivating application
// (network-aware operator placement for stream-processing systems): a query
// operator should run on the overlay node minimizing source-to-sink latency,
// and MIGRATING the operator is expensive. A coordinate change triggers
// re-evaluation, so coordinate stability directly bounds migration churn.
//
// The placement controller is a pure serving-layer consumer: it queries a
// CoordinateService for both hops of every candidate path and never reaches
// into coordinate state directly. The coordinate subsystem publishes an
// EpochSnapshot at each change notification — exactly the cadence a deployed
// node would push its coordinate to the directory — so the controller sees
// the frozen view a real serving tier would. The same workload runs twice —
// application coordinates driven by the ENERGY heuristic vs raw system
// coordinates — counting how many migrations each triggers for the same
// final placement quality. This is the paper's "cascade of heavyweight
// process migrations" argument made concrete.
//
//   build/examples/operator_placement [--nodes=80 --minutes=45]
#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "common/flags.hpp"
#include "core/nc_client.hpp"
#include "estimate/snapshot.hpp"
#include "latency/trace_generator.hpp"
#include "serve/coordinate_service.hpp"

using namespace nc;

namespace {

struct PlacementRun {
  long reevaluations = 0;       // placement recomputations triggered
  int migrations = 0;           // actual host changes
  std::uint64_t snapshots = 0;  // snapshot versions published
  double final_cost_ms = 0.0;   // placed path latency (ground truth)
  double optimal_cost_ms = 0.0; // best possible path latency
};

// Replays the workload. The placement controller is event-driven, exactly as
// the paper prescribes for the coordinate black box: whenever the coordinate
// subsystem reports that the application coordinate of the source, the sink
// or the current host changed, a fresh snapshot is published and the
// controller re-runs the O(n) placement scan over the service; a host change
// is a heavyweight migration. Raw coordinates notify on nearly every sample;
// ENERGY notifies only at change points.
PlacementRun run(const HeuristicConfig& heuristic, std::uint64_t seed, int n,
                 double duration) {
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = seed;
  trace.topology.seed = seed;
  trace.availability.enabled = false;

  NCClientConfig cc;
  cc.heuristic = heuristic;
  std::vector<NCClient> clients;
  clients.reserve(static_cast<std::size_t>(n));
  for (NodeId id = 0; id < n; ++id) clients.emplace_back(id, cc);

  // The publisher stands in for the deployment's coordinate directory; the
  // controller only ever sees what has been published through it.
  est::SnapshotPublisher publisher;
  serve::CoordinateService service(&publisher, n);
  const auto publish_state = [&](double t) {
    est::EpochSnapshot& snap = publisher.staging(n);
    for (NodeId id = 0; id < n; ++id) {
      est::SnapshotNode& slot = snap.nodes[static_cast<std::size_t>(id)];
      const NCClient& c = clients[static_cast<std::size_t>(id)];
      slot.app = c.application_coordinate();
      slot.error = c.error_estimate();
      slot.confidence = c.confidence();
      slot.up = 1;
    }
    publisher.publish(t);
  };

  lat::TraceGenerator gen(trace);

  // Source and sink in the same (largest) region: many hosts are near-tied,
  // so the argmin is sensitive to coordinate jitter — the regime where
  // application-coordinate stability matters.
  const NodeId source = 0;
  const NodeId sink = static_cast<NodeId>(n / 5);

  PlacementRun result;
  NodeId host = kInvalidNode;
  const double warmup = duration / 4.0;  // let coordinates converge first
  double now = 0.0;

  const auto replace = [&] {
    publish_state(now);
    ++result.reevaluations;
    NodeId best = source;
    double best_cost = 1e18;
    for (NodeId cand = 0; cand < n; ++cand) {
      const std::optional<double> up = service.distance_ms(source, cand);
      const std::optional<double> down = service.distance_ms(cand, sink);
      if (!up.has_value() || !down.has_value()) continue;  // not yet placed
      const double cost = *up + *down;
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    if (best != host) {
      if (host != kInvalidNode) ++result.migrations;
      host = best;
    }
  };

  while (auto rec = gen.next()) {
    if (rec->t_s >= duration) break;
    now = rec->t_s;
    NCClient& src = clients[static_cast<std::size_t>(rec->src)];
    NCClient& dst = clients[static_cast<std::size_t>(rec->dst)];
    const ObservationOutcome out =
        src.observe(rec->dst, dst.system_coordinate(), dst.error_estimate(),
                    rec->rtt_ms, rec->t_s);
    if (rec->t_s < warmup) continue;
    if (host == kInvalidNode) {
      replace();  // initial placement
      continue;
    }
    // The coordinate subsystem's change notification drives the controller.
    if (out.app_updated &&
        (rec->src == source || rec->src == sink || rec->src == host)) {
      replace();
    }
  }
  result.snapshots = publisher.published();

  // Score the final placement against ground truth.
  const double t = duration + 1.0;
  auto path_cost = [&](NodeId mid) {
    double cost = 0.0;
    if (mid != source) cost += gen.network().ground_truth_rtt(source, mid, t);
    if (mid != sink) cost += gen.network().ground_truth_rtt(mid, sink, t);
    return cost;
  };
  result.final_cost_ms = host == kInvalidNode ? -1.0 : path_cost(host);
  result.optimal_cost_ms = 1e18;
  for (NodeId cand = 0; cand < n; ++cand)
    result.optimal_cost_ms = std::min(result.optimal_cost_ms, path_cost(cand));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 80));
  const double duration = 60.0 * flags.get_double("minutes", 45.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  std::printf("operator placement between node 0 and node %d, re-run on every\n"
              "coordinate-change notification for source/sink/host:\n\n",
              n / 5);
  const PlacementRun stable = run(HeuristicConfig::energy(8.0, 32), seed, n, duration);
  const PlacementRun raw = run(HeuristicConfig::always(), seed, n, duration);

  std::printf("  %-24s re-evaluations %6ld  migrations %3d  snapshots %6llu  "
              "path %.1f ms (optimum %.1f)\n",
              "energy application c_a:", stable.reevaluations, stable.migrations,
              static_cast<unsigned long long>(stable.snapshots),
              stable.final_cost_ms, stable.optimal_cost_ms);
  std::printf("  %-24s re-evaluations %6ld  migrations %3d  snapshots %6llu  "
              "path %.1f ms (optimum %.1f)\n",
              "raw system c_s:", raw.reevaluations, raw.migrations,
              static_cast<unsigned long long>(raw.snapshots),
              raw.final_cost_ms, raw.optimal_cost_ms);
  std::printf("\nsame placement quality; the stable application coordinate cuts the\n"
              "notification -> publish -> re-evaluation -> (possible) migration\n"
              "cascade by orders of magnitude — the reason the paper separates\n"
              "application- from system-level coordinates.\n");
  return 0;
}

// Stream-operator placement — the authors' own motivating application
// (network-aware operator placement for stream-processing systems): a query
// operator should run on the overlay node minimizing source-to-sink latency,
// and MIGRATING the operator is expensive. A coordinate change triggers
// re-evaluation, so coordinate stability directly bounds migration churn.
//
// This example runs the same workload twice — application coordinates driven
// by the ENERGY heuristic vs raw system coordinates — and counts how many
// migrations each triggers for the same final placement quality. This is the
// paper's "cascade of heavyweight process migrations" argument made concrete.
//
//   build/examples/operator_placement [--nodes=80 --minutes=45]
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "latency/trace_generator.hpp"
#include "sim/replay.hpp"

using namespace nc;

namespace {

struct PlacementRun {
  long reevaluations = 0;       // placement recomputations triggered
  int migrations = 0;           // actual host changes
  double final_cost_ms = 0.0;   // placed path latency (ground truth)
  double optimal_cost_ms = 0.0; // best possible path latency
};

// Replays the workload. The placement controller is event-driven, exactly as
// the paper prescribes for the coordinate black box: whenever the coordinate
// subsystem reports that the application coordinate of the source, the sink
// or the current host changed, the controller re-runs the O(n) placement
// scan; a host change is a heavyweight migration. Raw coordinates notify on
// nearly every sample; ENERGY notifies only at change points.
PlacementRun run(const HeuristicConfig& heuristic, std::uint64_t seed, int n,
                 double duration) {
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = seed;
  trace.topology.seed = seed;
  trace.availability.enabled = false;

  sim::ReplayConfig rc;
  rc.client.heuristic = heuristic;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;

  lat::TraceGenerator gen(trace);
  sim::ReplayDriver driver(rc, gen.num_nodes());

  // Source and sink in the same (largest) region: many hosts are near-tied,
  // so the argmin is sensitive to coordinate jitter — the regime where
  // application-coordinate stability matters.
  const NodeId source = 0;
  const NodeId sink = static_cast<NodeId>(n / 5);

  PlacementRun result;
  NodeId host = kInvalidNode;
  const double warmup = duration / 4.0;  // let coordinates converge first

  const auto replace = [&] {
    ++result.reevaluations;
    const Coordinate& s = driver.client(source).application_coordinate();
    const Coordinate& k = driver.client(sink).application_coordinate();
    NodeId best = source;
    double best_cost = 1e18;
    for (NodeId cand = 0; cand < n; ++cand) {
      const Coordinate& c = driver.client(cand).application_coordinate();
      const double cost = s.distance_to(c) + c.distance_to(k);
      if (cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    if (best != host) {
      if (host != kInvalidNode) ++result.migrations;
      host = best;
    }
  };

  while (auto rec = gen.next()) {
    if (rec->t_s >= rc.duration_s) break;
    NCClient& src = driver.client(rec->src);
    NCClient& dst = driver.client(rec->dst);
    const ObservationOutcome out =
        src.observe(rec->dst, dst.system_coordinate(), dst.error_estimate(),
                    rec->rtt_ms, rec->t_s);
    if (rec->t_s < warmup) continue;
    if (host == kInvalidNode) {
      replace();  // initial placement
      continue;
    }
    // The coordinate subsystem's change notification drives the controller.
    if (out.app_updated &&
        (rec->src == source || rec->src == sink || rec->src == host)) {
      replace();
    }
  }

  // Score the final placement against ground truth.
  const double t = duration + 1.0;
  auto path_cost = [&](NodeId mid) {
    double cost = 0.0;
    if (mid != source) cost += gen.network().ground_truth_rtt(source, mid, t);
    if (mid != sink) cost += gen.network().ground_truth_rtt(mid, sink, t);
    return cost;
  };
  result.final_cost_ms = host == kInvalidNode ? -1.0 : path_cost(host);
  result.optimal_cost_ms = 1e18;
  for (NodeId cand = 0; cand < n; ++cand)
    result.optimal_cost_ms = std::min(result.optimal_cost_ms, path_cost(cand));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 80));
  const double duration = 60.0 * flags.get_double("minutes", 45.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 21));

  std::printf("operator placement between node 0 and node %d, re-run on every\n"
              "coordinate-change notification for source/sink/host:\n\n",
              n / 5);
  const PlacementRun stable = run(HeuristicConfig::energy(8.0, 32), seed, n, duration);
  const PlacementRun raw = run(HeuristicConfig::always(), seed, n, duration);

  std::printf("  %-24s re-evaluations %6ld  migrations %3d  path %.1f ms "
              "(optimum %.1f)\n",
              "energy application c_a:", stable.reevaluations, stable.migrations,
              stable.final_cost_ms, stable.optimal_cost_ms);
  std::printf("  %-24s re-evaluations %6ld  migrations %3d  path %.1f ms "
              "(optimum %.1f)\n",
              "raw system c_s:", raw.reevaluations, raw.migrations,
              raw.final_cost_ms, raw.optimal_cost_ms);
  std::printf("\nsame placement quality; the stable application coordinate cuts the\n"
              "notification -> re-evaluation -> (possible) migration cascade by\n"
              "orders of magnitude — the reason the paper separates application-\n"
              "from system-level coordinates.\n");
  return 0;
}

// Confidence building on a low-latency cluster (paper Sec. IV-B, Fig. 6).
//
// On links whose true latency sits below the measurement precision (~1 ms on
// a 2005 cluster), scheduling jitter keeps Vivaldi's relative error — and
// thus its confidence — pinned down. Allowing a small margin of error
// (treating |predicted - measured| <= 3 ms as exact) lets cluster nodes
// reach full confidence. This example uses the Vivaldi class directly: the
// lowest-level public API.
//
//   build/examples/cluster_confidence [--margin=3]
#include <cstdio>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "core/vivaldi.hpp"

using namespace nc;

namespace {

double steady_state_confidence(double margin_ms, std::uint64_t seed) {
  VivaldiConfig cfg;
  cfg.dim = 3;
  cfg.confidence_margin_ms = margin_ms;

  Vivaldi a(cfg, 1), b(cfg, 2), c(cfg, 3);
  Rng rng(seed);

  // Cluster RTTs: ~0.4-1.2 ms of scheduler noise around a 0.7 ms latency,
  // with a 5% tail above 1.2 ms (context switches) — Fig. 6's setup.
  const auto sample = [&rng]() {
    double rtt = rng.uniform(0.4, 1.2);
    if (rng.bernoulli(0.05)) rtt += rng.uniform(0.5, 2.0);
    return rtt;
  };

  double confidence_sum = 0.0;
  int samples = 0;
  for (int second = 0; second < 600; ++second) {
    // Round-robin: each node measures one peer per second.
    a.observe(second % 2 == 0 ? b.coordinate() : c.coordinate(),
              second % 2 == 0 ? b.error_estimate() : c.error_estimate(), sample());
    b.observe(second % 2 == 0 ? c.coordinate() : a.coordinate(),
              second % 2 == 0 ? c.error_estimate() : a.error_estimate(), sample());
    c.observe(second % 2 == 0 ? a.coordinate() : b.coordinate(),
              second % 2 == 0 ? a.error_estimate() : b.error_estimate(), sample());
    if (second >= 300) {  // steady state only
      confidence_sum += a.confidence();
      ++samples;
    }
  }
  return confidence_sum / samples;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const double margin = flags.get_double("margin", 3.0);

  std::printf("three-node cluster, 10 minutes of 1 Hz sampling:\n");
  std::printf("  steady-state confidence without margin: %.3f (paper: ~0.75)\n",
              steady_state_confidence(0.0, 5));
  std::printf("  steady-state confidence with %.0f ms margin: %.3f (paper: ~1.0)\n",
              margin, steady_state_confidence(margin, 5));
  std::printf("\nthe margin absorbs timing jitter that would otherwise read as\n"
              "persistent prediction error on sub-millisecond links.\n");
  return 0;
}

// Distributed approximate k-nearest-neighbors over network coordinates —
// the problem the paper's related-work section cites as a coordinate-space
// application (operator placement and k-NN in stream overlays).
//
// The directory is the serving layer itself: a CoordinateService over the
// engine's published epoch snapshots answers "which k nodes are closest to
// X?" from the frozen coordinate view alone — no per-query measurement, and
// the hand-rolled registration cache the earlier version of this example
// maintained is gone. We score against ground truth: how many of the true k
// nearest does the snapshot answer find, and how much extra RTT does
// contacting the top-ranked neighbor cost?
//
//   build/examples/knn_service [--nodes=120 --minutes=30 --k=5]
#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "common/flags.hpp"
#include "latency/trace_generator.hpp"
#include "serve/coordinate_service.hpp"
#include "sim/sharded_sim.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int k = static_cast<int>(flags.get_int("k", 5));

  // Build coordinates from a synthetic measurement stream on the
  // epoch-sharded engine, publishing snapshots for the service to read.
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;
  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  rc.publish_snapshots = true;
  lat::TraceGenerator gen(trace);
  sim::ShardedEngine engine(rc, gen.num_nodes());
  engine.run(gen);

  // Score the service's k-NN answers for every node against ground truth.
  serve::CoordinateService service(&engine.snapshot_publisher(), n);
  const double t_eval = duration + 1.0;
  double recall_sum = 0.0;
  double penalty_sum = 0.0;  // extra RTT of the contacted node vs true nearest
  std::vector<serve::CoordinateService::Neighbor> answer;
  for (NodeId q = 0; q < n; ++q) {
    service.nearest_k(q, k, answer);

    // Ground-truth k nearest by quiescent RTT.
    std::vector<std::pair<double, NodeId>> truth;
    for (NodeId other = 0; other < n; ++other) {
      if (other == q) continue;
      truth.emplace_back(gen.network().ground_truth_rtt(q, other, t_eval), other);
    }
    std::sort(truth.begin(), truth.end());

    std::set<NodeId> true_set;
    for (int i = 0; i < k; ++i)
      true_set.insert(truth[static_cast<std::size_t>(i)].second);
    int hits = 0;
    for (const auto& nb : answer)
      if (true_set.count(nb.id) > 0) ++hits;
    recall_sum += static_cast<double>(hits) / k;

    // The querying node contacts the top-ranked neighbor (the answer is
    // already ascending by predicted RTT).
    const NodeId contacted = answer.front().id;
    penalty_sum +=
        gen.network().ground_truth_rtt(q, contacted, t_eval) - truth.front().first;
  }

  const serve::ServiceStats& stats = service.stats();
  std::printf("approximate %d-NN over %d nodes from published snapshots:\n", k, n);
  std::printf("  mean recall@%d vs ground truth: %.0f%%\n", k,
              100.0 * recall_sum / n);
  std::printf("  mean extra RTT of the contacted neighbor: %.2f ms\n",
              penalty_sum / n);
  std::printf("  service: %llu nearest-k queries against snapshot v%llu "
              "(%llu empty)\n",
              static_cast<unsigned long long>(stats.nearest_queries),
              static_cast<unsigned long long>(service.snapshot_version()),
              static_cast<unsigned long long>(stats.empty_answers));
  return 0;
}

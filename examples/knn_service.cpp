// Distributed approximate k-nearest-neighbors over network coordinates —
// the problem the paper's related-work section cites as a coordinate-space
// application (operator placement and k-NN in stream overlays).
//
// A directory node collects every peer's application coordinate through the
// wire codec into a CoordinateMap and answers "which k nodes are closest to
// X?" queries from the cache alone. We score answers against ground truth:
// how many of the true k nearest does the coordinate answer find, and how
// much extra RTT does the best returned node cost?
//
//   build/examples/knn_service [--nodes=120 --minutes=30 --k=5]
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "common/flags.hpp"
#include "core/coordinate_map.hpp"
#include "core/wire.hpp"
#include "latency/trace_generator.hpp"
#include "sim/replay.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int k = static_cast<int>(flags.get_int("k", 5));

  // Build coordinates from a synthetic measurement stream.
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;
  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  lat::TraceGenerator gen(trace);
  sim::ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen);

  // The directory ingests every node's advertised state via the wire codec,
  // exactly as a real registration message would arrive.
  CoordinateMap directory;
  for (NodeId id = 0; id < n; ++id) {
    const NCClient& c = driver.client(id);
    const auto state =
        decode_state(encode_state(c.application_coordinate(), c.error_estimate()));
    if (state.has_value()) directory.update(id, state->coordinate, duration);
  }

  // Score k-NN answers for every node against ground truth.
  const double t_eval = duration + 1.0;
  double recall_sum = 0.0;
  double penalty_sum = 0.0;  // extra RTT of the best returned vs true nearest
  for (NodeId q = 0; q < n; ++q) {
    const auto answer = directory.nearest(
        *directory.get(q, t_eval), k, t_eval, CoordinateMap::kNoMaxAge, q);

    // Ground-truth k nearest by quiescent RTT.
    std::vector<std::pair<double, NodeId>> truth;
    for (NodeId other = 0; other < n; ++other) {
      if (other == q) continue;
      truth.emplace_back(gen.network().ground_truth_rtt(q, other, t_eval), other);
    }
    std::sort(truth.begin(), truth.end());

    std::set<NodeId> true_set;
    for (int i = 0; i < k; ++i) true_set.insert(truth[static_cast<std::size_t>(i)].second);
    int hits = 0;
    for (const auto& nb : answer)
      if (true_set.count(nb.id) > 0) ++hits;
    recall_sum += static_cast<double>(hits) / k;

    double best_returned = 1e18;
    for (const auto& nb : answer)
      best_returned =
          std::min(best_returned, gen.network().ground_truth_rtt(q, nb.id, t_eval));
    penalty_sum += best_returned - truth.front().first;
  }

  std::printf("approximate %d-NN over %d nodes from cached coordinates:\n", k, n);
  std::printf("  mean recall@%d vs ground truth: %.0f%%\n", k,
              100.0 * recall_sum / n);
  std::printf("  mean extra RTT of best returned neighbor: %.2f ms\n",
              penalty_sum / n);
  std::printf("  directory size: %zu coordinates (%zu wire bytes each)\n",
              directory.size(), encoded_size(3, false));
  return 0;
}

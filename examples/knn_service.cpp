// Distributed approximate k-nearest-neighbors over network coordinates —
// the problem the paper's related-work section cites as a coordinate-space
// application (operator placement and k-NN in stream overlays).
//
// A directory node collects every peer's application coordinate through the
// wire codec into a CoordinateMap and answers "which k nodes are closest to
// X?" queries from the cache alone. The querying node then ranks the
// returned candidates through the run's LatencyEstimator — the same seam
// every other consumer queries — and contacts the best-ranked one. We score
// against ground truth: how many of the true k nearest does the coordinate
// answer find, and how much extra RTT does the contacted node cost?
//
//   build/examples/knn_service [--nodes=120 --minutes=30 --k=5]
#include <algorithm>
#include <cstdio>
#include <optional>
#include <set>
#include <vector>

#include "common/flags.hpp"
#include "core/coordinate_map.hpp"
#include "core/wire.hpp"
#include "latency/trace_generator.hpp"
#include "sim/sharded_sim.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int k = static_cast<int>(flags.get_int("k", 5));

  // Build coordinates from a synthetic measurement stream on the unified
  // epoch-sharded engine.
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;
  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  lat::TraceGenerator gen(trace);
  sim::ShardedEngine engine(rc, gen.num_nodes());
  engine.run(gen);

  // The directory ingests every node's advertised state via the wire codec,
  // exactly as a real registration message would arrive.
  CoordinateMap directory;
  for (NodeId id = 0; id < n; ++id) {
    const NCClient& c = engine.client(id);
    const auto state =
        decode_state(encode_state(c.application_coordinate(), c.error_estimate()));
    if (state.has_value()) directory.update(id, state->coordinate, duration);
  }

  // Score k-NN answers for every node against ground truth.
  const double t_eval = duration + 1.0;
  double recall_sum = 0.0;
  double penalty_sum = 0.0;  // extra RTT of the contacted node vs true nearest
  for (NodeId q = 0; q < n; ++q) {
    const auto answer = directory.nearest(
        *directory.get(q, t_eval), k, t_eval, CoordinateMap::kNoMaxAge, q);

    // Ground-truth k nearest by quiescent RTT.
    std::vector<std::pair<double, NodeId>> truth;
    for (NodeId other = 0; other < n; ++other) {
      if (other == q) continue;
      truth.emplace_back(gen.network().ground_truth_rtt(q, other, t_eval), other);
    }
    std::sort(truth.begin(), truth.end());

    std::set<NodeId> true_set;
    for (int i = 0; i < k; ++i) true_set.insert(truth[static_cast<std::size_t>(i)].second);
    int hits = 0;
    for (const auto& nb : answer)
      if (true_set.count(nb.id) > 0) ++hits;
    recall_sum += static_cast<double>(hits) / k;

    // The querying node contacts the candidate its estimator ranks closest.
    NodeId contacted = answer.front().id;
    double contacted_est = 1e18;
    for (const auto& nb : answer) {
      const std::optional<double> e = engine.estimate_rtt(q, nb.id, t_eval);
      if (e.has_value() && *e < contacted_est) {
        contacted_est = *e;
        contacted = nb.id;
      }
    }
    penalty_sum +=
        gen.network().ground_truth_rtt(q, contacted, t_eval) - truth.front().first;
  }

  const est::EstimatorStats stats = engine.estimator_stats();
  std::printf("approximate %d-NN over %d nodes from cached coordinates:\n", k, n);
  std::printf("  mean recall@%d vs ground truth: %.0f%%\n", k,
              100.0 * recall_sum / n);
  std::printf("  mean extra RTT of the contacted neighbor: %.2f ms\n",
              penalty_sum / n);
  std::printf("  directory size: %zu coordinates (%zu wire bytes each)\n",
              directory.size(), encoded_size(3, false));
  std::printf("  estimator coverage %.0f%% over %llu queries\n",
              100.0 * stats.coverage(),
              static_cast<unsigned long long>(stats.queries));
  return 0;
}

// Replica selection with network coordinates (the content-distribution
// motivation from the paper's introduction).
//
// A 120-node network hosts 6 replicas of a service. Every client picks the
// replica whose coordinate is closest to its own — no measurement to any
// replica required at decision time — and we score the choice against the
// ground-truth best replica. Coordinates built from the live sample stream
// make near-optimal choices; random selection is the baseline.
//
//   build/examples/nearest_server [--nodes=120 --minutes=30]
#include <cstdio>
#include <vector>

#include "common/flags.hpp"
#include "latency/trace_generator.hpp"
#include "sim/replay.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int num_replicas = static_cast<int>(flags.get_int("replicas", 6));

  // Build coordinates by replaying a synthetic measurement stream.
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;  // servers and clients stay up

  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  lat::TraceGenerator gen(trace);
  sim::ReplayDriver driver(rc, gen.num_nodes());
  driver.run(gen);

  // Spread replicas across the id space (i.e., across regions).
  std::vector<NodeId> replicas;
  for (int r = 0; r < num_replicas; ++r)
    replicas.push_back(static_cast<NodeId>(r * n / num_replicas));

  // Every other node picks its nearest replica by coordinate distance.
  Rng rng(99);
  double coord_penalty_sum = 0.0;   // chosen RTT minus best RTT (ms)
  double random_penalty_sum = 0.0;
  int optimal_hits = 0;
  int clients = 0;
  const double t_eval = duration + 1.0;
  for (NodeId client = 0; client < n; ++client) {
    bool is_replica = false;
    for (NodeId r : replicas) is_replica |= (r == client);
    if (is_replica) continue;
    ++clients;

    const Coordinate& mine =
        driver.client(client).application_coordinate();
    NodeId chosen = replicas.front();
    double chosen_dist = 1e18;
    double best_rtt = 1e18;
    NodeId best = replicas.front();
    for (NodeId r : replicas) {
      const double d =
          mine.distance_to(driver.client(r).application_coordinate());
      if (d < chosen_dist) {
        chosen_dist = d;
        chosen = r;
      }
      const double rtt = gen.network().ground_truth_rtt(client, r, t_eval);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = r;
      }
    }
    if (chosen == best) ++optimal_hits;
    coord_penalty_sum +=
        gen.network().ground_truth_rtt(client, chosen, t_eval) - best_rtt;
    const NodeId random_choice =
        replicas[static_cast<std::size_t>(rng.uniform_int(replicas.size()))];
    random_penalty_sum +=
        gen.network().ground_truth_rtt(client, random_choice, t_eval) - best_rtt;
  }

  std::printf("replica selection over %d clients, %d replicas:\n", clients,
              num_replicas);
  std::printf("  coordinates picked the true nearest replica: %d/%d (%.0f%%)\n",
              optimal_hits, clients, 100.0 * optimal_hits / clients);
  std::printf("  mean extra RTT vs optimal: coordinates %.1f ms, random %.1f ms\n",
              coord_penalty_sum / clients, random_penalty_sum / clients);
  return 0;
}

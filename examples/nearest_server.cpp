// Replica selection through the LatencyEstimator seam (the content-
// distribution motivation from the paper's introduction).
//
// A 120-node network hosts 6 replicas of a service. Every client asks the
// run's estimator backend for its RTT to each replica and picks the
// smallest answer — no measurement to any replica at decision time — and we
// score the choice against the ground-truth best replica. The backend is
// selectable: the paper's coordinates answer every query from the embedding;
// the IDMS delay matrix answers covered pairs from direct measurements and
// falls back to coordinates for the rest. Random selection is the baseline.
//
//   build/examples/nearest_server [--nodes=120 --minutes=30
//                                  --backend=coordinates|idms]
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "estimate/estimator_config.hpp"
#include "latency/trace_generator.hpp"
#include "sim/sharded_sim.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int num_replicas = static_cast<int>(flags.get_int("replicas", 6));
  const std::string backend_arg = flags.get_string("backend", "coordinates");
  const auto backend = est::backend_from_string(backend_arg);
  if (!backend.has_value()) {
    std::fprintf(stderr, "unknown backend '%s' (coordinates|idms)\n",
                 backend_arg.c_str());
    return 2;
  }

  // Build estimator state by replaying a synthetic measurement stream
  // through the unified epoch-sharded engine.
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;  // servers and clients stay up

  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  rc.estimator.backend = *backend;
  lat::TraceGenerator gen(trace);
  sim::ShardedEngine engine(rc, gen.num_nodes());
  engine.run(gen);

  // Spread replicas across the id space (i.e., across regions).
  std::vector<NodeId> replicas;
  for (int r = 0; r < num_replicas; ++r)
    replicas.push_back(static_cast<NodeId>(r * n / num_replicas));

  // Every other node asks the estimator which replica is closest.
  Rng rng(99);
  double est_penalty_sum = 0.0;  // chosen RTT minus best RTT (ms)
  double random_penalty_sum = 0.0;
  int optimal_hits = 0;
  int clients = 0;
  const double t_eval = duration + 1.0;
  for (NodeId client = 0; client < n; ++client) {
    bool is_replica = false;
    for (NodeId r : replicas) is_replica |= (r == client);
    if (is_replica) continue;
    ++clients;

    NodeId chosen = replicas.front();
    double chosen_est = 1e18;
    double best_rtt = 1e18;
    NodeId best = replicas.front();
    for (NodeId r : replicas) {
      const std::optional<double> e = engine.estimate_rtt(client, r, t_eval);
      if (e.has_value() && *e < chosen_est) {
        chosen_est = *e;
        chosen = r;
      }
      const double rtt = gen.network().ground_truth_rtt(client, r, t_eval);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = r;
      }
    }
    if (chosen == best) ++optimal_hits;
    est_penalty_sum +=
        gen.network().ground_truth_rtt(client, chosen, t_eval) - best_rtt;
    const NodeId random_choice =
        replicas[static_cast<std::size_t>(rng.uniform_int(replicas.size()))];
    random_penalty_sum +=
        gen.network().ground_truth_rtt(client, random_choice, t_eval) - best_rtt;
  }

  const est::EstimatorStats stats = engine.estimator_stats();
  std::printf("replica selection over %d clients, %d replicas (backend=%s):\n",
              clients, num_replicas, est::backend_name(*backend));
  std::printf("  estimator picked the true nearest replica: %d/%d (%.0f%%)\n",
              optimal_hits, clients, 100.0 * optimal_hits / clients);
  std::printf("  mean extra RTT vs optimal: estimator %.1f ms, random %.1f ms\n",
              est_penalty_sum / clients, random_penalty_sum / clients);
  std::printf("  backend coverage %.0f%% over %llu queries, %llu state entries\n",
              100.0 * stats.coverage(),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.entries));
  return 0;
}

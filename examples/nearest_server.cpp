// Replica selection through the serving layer (the content-distribution
// motivation from the paper's introduction).
//
// A 120-node network hosts 6 replicas of a service. Every client asks a
// CoordinateService — the query front end over the engine's published epoch
// snapshots (serve/coordinate_service.hpp) — for its predicted RTT to each
// replica and picks the smallest answer; no measurement to any replica
// happens at decision time. The answer path is the same LatencyEstimator
// seam the engine scores internally (a SnapshotEstimator over the final
// published snapshot), so a service answer and a --backend=snapshot metric
// are the same computation. Random selection is the baseline; ground truth
// scores the choice.
//
//   build/examples/nearest_server [--nodes=120 --minutes=30 --replicas=6]
#include <cstdio>
#include <optional>
#include <vector>

#include "common/flags.hpp"
#include "latency/trace_generator.hpp"
#include "serve/coordinate_service.hpp"
#include "sim/sharded_sim.hpp"

using namespace nc;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("nodes", 120));
  const double duration = 60.0 * flags.get_double("minutes", 30.0);
  const int num_replicas = static_cast<int>(flags.get_int("replicas", 6));

  // Build coordinate state by replaying a synthetic measurement stream
  // through the epoch-sharded engine, publishing snapshots as it runs (the
  // end-of-run state is always published, so the service sees the final
  // embedding).
  lat::TraceGenConfig trace;
  trace.topology.num_nodes = n;
  trace.duration_s = duration;
  trace.seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  trace.topology.seed = trace.seed;
  trace.availability.enabled = false;  // servers and clients stay up

  sim::ReplayConfig rc;
  rc.duration_s = duration;
  rc.measure_start_s = duration / 2.0;
  rc.publish_snapshots = true;
  lat::TraceGenerator gen(trace);
  sim::ShardedEngine engine(rc, gen.num_nodes());
  engine.run(gen);

  // Spread replicas across the id space (i.e., across regions).
  std::vector<NodeId> replicas;
  for (int r = 0; r < num_replicas; ++r)
    replicas.push_back(static_cast<NodeId>(r * n / num_replicas));

  // Every other node asks the service which replica is closest.
  serve::CoordinateService service(&engine.snapshot_publisher(), n);
  Rng rng(99);
  double est_penalty_sum = 0.0;  // chosen RTT minus best RTT (ms)
  double random_penalty_sum = 0.0;
  int optimal_hits = 0;
  int clients = 0;
  const double t_eval = duration + 1.0;
  for (NodeId client = 0; client < n; ++client) {
    bool is_replica = false;
    for (NodeId r : replicas) is_replica |= (r == client);
    if (is_replica) continue;
    ++clients;

    NodeId chosen = replicas.front();
    double chosen_est = 1e18;
    double best_rtt = 1e18;
    NodeId best = replicas.front();
    for (NodeId r : replicas) {
      const std::optional<double> e = service.distance_ms(client, r);
      if (e.has_value() && *e < chosen_est) {
        chosen_est = *e;
        chosen = r;
      }
      const double rtt = gen.network().ground_truth_rtt(client, r, t_eval);
      if (rtt < best_rtt) {
        best_rtt = rtt;
        best = r;
      }
    }
    if (chosen == best) ++optimal_hits;
    est_penalty_sum +=
        gen.network().ground_truth_rtt(client, chosen, t_eval) - best_rtt;
    const NodeId random_choice =
        replicas[static_cast<std::size_t>(rng.uniform_int(replicas.size()))];
    random_penalty_sum +=
        gen.network().ground_truth_rtt(client, random_choice, t_eval) - best_rtt;
  }

  const serve::ServiceStats& stats = service.stats();
  std::printf("replica selection over %d clients, %d replicas "
              "(CoordinateService, snapshot v%llu):\n",
              clients, num_replicas,
              static_cast<unsigned long long>(service.snapshot_version()));
  std::printf("  service picked the true nearest replica: %d/%d (%.0f%%)\n",
              optimal_hits, clients, 100.0 * optimal_hits / clients);
  std::printf("  mean extra RTT vs optimal: service %.1f ms, random %.1f ms\n",
              est_penalty_sum / clients, random_penalty_sum / clients);
  std::printf("  service answered %llu distance queries (%llu empty)\n",
              static_cast<unsigned long long>(stats.distance_queries),
              static_cast<unsigned long long>(stats.empty_answers));
  return 0;
}

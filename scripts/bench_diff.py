#!/usr/bin/env python3
"""Compare two BENCH_*.json records and fail on kernel regressions.

Usage: bench_diff.py OLD.json NEW.json [--threshold PCT]

Two kinds of entries are compared, matched by name across the files:

  * google-benchmark micro kernels (the "benchmarks" array): cpu_time,
    lower is better;
  * engine kernel rates (the "event_core" and — since PR 7 —
    "large_scale" sections, or PR 3's "shard_scaling" section, whose rows
    are normalized to the same keys): events_per_s, higher is better. Rows
    are keyed by (engine, nodes, shards), so the serial facade, sharded
    online, sharded replay and large-scale rows are tracked independently;
  * engine memory footprints (the same sections' mem_bytes key): bytes at
    end of run, lower is better. A row that silently balloons past the
    threshold fails CI even if its events/s held up — the large-scale tier
    exists precisely because state size, not speed, is what breaks first;
  * serving-tier rows (the "serving" section, since PR 8): p99_us per
    (scenario, nodes, shards, clients, rate) row, lower is better, and the
    achieved qps, higher is better. Tail latency is the serving layer's
    whole contract, so a p99 that quietly grows 25% fails the same way a
    kernel slowdown does. Since PR 10 rows also carry a snapshot_deltas
    flag (part of the key — delta and full publication rows are tracked
    independently; pre-PR 10 rows default to 0, so old full-mode rows keep
    matching) and snapshot_publish_bytes_per_epoch, the mean wire bytes one
    snapshot publish costs, lower is better — churn-proportional
    publication exists to hold this down, so it gates like memory;
  * rebalance rows (the "rebalance" section, since PR 9): events_per_s per
    (scenario, nodes, shards, rebalance) row, higher is better, and
    util_spread — the (max-min)/mean spread of per-shard busy CPU time —
    lower is better. Dynamic ownership exists to hold that spread down
    under churn without costing throughput, so both directions gate.
    util_spread is compared with an ADDITIVE slack of 0.1 on top of the
    percentage threshold: spread is a dimensionless ratio that sits near
    zero on a quiet host, so a pure percentage gate fails on scheduler
    noise (0.01 -> 0.04 is +300% but means nothing on a time-sliced
    1-core container), while a genuine regression — the kind rebalancing
    exists to prevent — moves spread by tenths (PR 9's own deltas:
    0.144 -> 0.028).

Entries present in only one file are reported but never fail the check
(benches come and go across PRs); a matched entry that regressed by more
than --threshold percent (default 25) fails with exit code 1. Records are
expected to come from comparable runs (same host class, same build type) —
this guards against collateral kernel damage, not micro-noise, hence the
generous default threshold.
"""

import argparse
import json
import sys


def micro_kernels(record):
    """name -> cpu_time (ns, lower is better) from the benchmarks array."""
    out = {}
    for b in record.get("benchmarks", []):
        if b.get("run_type", "iteration") == "iteration":
            out[b["name"]] = float(b["cpu_time"])
    return out


def _engine_rows(record):
    """Rows from every section that prints (engine, nodes, shards) rows."""
    for section in ("event_core", "large_scale"):
        for row in record.get(section, {}).get("results", []):
            yield row


def engine_rates(record):
    """name -> events/s (higher is better) from the engine row sections."""
    out = {}
    for row in _engine_rows(record):
        name = "online_events_per_s[engine=%s,nodes=%d,shards=%d]" % (
            row.get("engine", "sharded"),
            int(row["nodes"]),
            int(row.get("shards", 0)),
        )
        out[name] = float(row["events_per_s"])
    # PR 3's bench_shard_scaling section: always the sharded engine at 1000
    # nodes (the workload string pins it); normalize to the same key space.
    for row in record.get("shard_scaling", {}).get("results", []):
        name = "online_events_per_s[engine=sharded,nodes=1000,shards=%d]" % int(
            row["shards"]
        )
        out[name] = float(row["events_per_s"])
    return out


def engine_memory(record):
    """name -> mem_bytes (lower is better) from the engine row sections.

    Older records (pre-PR 5) have no mem_bytes key; their rows are simply
    absent here and show up as only-in-one-file, which never fails.
    """
    out = {}
    for row in _engine_rows(record):
        if "mem_bytes" not in row:
            continue
        name = "mem_bytes[engine=%s,nodes=%d,shards=%d]" % (
            row.get("engine", "sharded"),
            int(row["nodes"]),
            int(row.get("shards", 0)),
        )
        out[name] = float(row["mem_bytes"])
    return out


def _serving_key(row):
    return "scenario=%s,nodes=%d,shards=%d,clients=%d,rate=%d,deltas=%d" % (
        row.get("scenario", "planetlab"),
        int(row["nodes"]),
        int(row.get("shards", 0)),
        int(row.get("clients", 0)),
        int(row.get("rate_qps", 0)),
        int(row.get("snapshot_deltas", 0)),
    )


def serving_p99(record):
    """name -> p99 latency in us (lower is better) from the serving rows."""
    out = {}
    for row in record.get("serving", {}).get("results", []):
        out["serving_p99_us[%s]" % _serving_key(row)] = float(row["p99_us"])
    return out


def serving_qps(record):
    """name -> achieved queries/s (higher is better) from the serving rows."""
    out = {}
    for row in record.get("serving", {}).get("results", []):
        out["serving_qps[%s]" % _serving_key(row)] = float(row["qps"])
    return out


def serving_publish_bytes(record):
    """name -> mean snapshot wire bytes per publish (lower is better).

    Only PR 10+ rows carry snapshot_publish_bytes_per_epoch; older rows are
    simply absent and show up as only-in-one-file, which never fails.
    """
    out = {}
    for row in record.get("serving", {}).get("results", []):
        if "snapshot_publish_bytes_per_epoch" not in row:
            continue
        out["serving_publish_bytes[%s]" % _serving_key(row)] = float(
            row["snapshot_publish_bytes_per_epoch"]
        )
    return out


def _rebalance_key(row):
    return "scenario=%s,nodes=%d,shards=%d,rebalance=%d" % (
        row.get("scenario", "flash-crowd"),
        int(row["nodes"]),
        int(row.get("shards", 0)),
        int(row.get("rebalance", 0)),
    )


def rebalance_rates(record):
    """name -> events/s (higher is better) from the rebalance rows."""
    out = {}
    for row in record.get("rebalance", {}).get("results", []):
        out["rebalance_events_per_s[%s]" % _rebalance_key(row)] = float(
            row["events_per_s"]
        )
    return out


def rebalance_spread(record):
    """name -> per-shard busy-time spread (lower is better).

    (max-min)/mean of per-worker busy CPU time; dynamic ownership exists to
    push this down, so a spread that quietly grows back fails like a kernel
    slowdown.
    """
    out = {}
    for row in record.get("rebalance", {}).get("results", []):
        out["rebalance_util_spread[%s]" % _rebalance_key(row)] = float(
            row["util_spread"]
        )
    return out


def compare(name, old, new, lower_is_better, threshold_pct, abs_slack=0.0):
    # improvement_pct is signed in the direction of goodness: positive means
    # the new record is better, negative means it regressed.
    if lower_is_better:
        improvement_pct = (old - new) / old * 100.0 if old > 0 else (
            0.0 if new == 0 else float("-inf")
        )
    else:
        improvement_pct = (new - old) / old * 100.0 if old > 0 else float("inf")
    regressed = improvement_pct < -threshold_pct
    # Near-zero absolute metrics (util_spread) get an additive grace band:
    # only a move past old + abs_slack is a regression, whatever the
    # percentage says.
    if regressed and lower_is_better and abs_slack > 0.0:
        regressed = new > old + abs_slack
    better = "lower" if lower_is_better else "higher"
    marker = "REGRESSION" if regressed else "ok"
    print(
        "  %-58s old=%12.1f new=%12.1f (%s is better, %+6.1f%%) %s"
        % (name, old, new, better, improvement_pct, marker)
    )
    return regressed


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="max tolerated regression in percent (default 25)")
    args = ap.parse_args()

    with open(args.old) as f:
        old = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    failures = 0
    for title, extract, lower, abs_slack in (
        ("micro kernels (cpu_time)", micro_kernels, True, 0.0),
        ("online engine (events/s)", engine_rates, False, 0.0),
        ("engine memory (mem_bytes)", engine_memory, True, 0.0),
        ("serving tail latency (p99_us)", serving_p99, True, 0.0),
        ("serving throughput (qps)", serving_qps, False, 0.0),
        ("serving publish bytes/epoch", serving_publish_bytes, True, 0.0),
        ("rebalance throughput (events/s)", rebalance_rates, False, 0.0),
        ("rebalance busy-time spread", rebalance_spread, True, 0.1),
    ):
        a, b = extract(old), extract(new)
        shared = sorted(set(a) & set(b))
        only_old = sorted(set(a) - set(b))
        only_new = sorted(set(b) - set(a))
        print("%s: %d compared" % (title, len(shared)))
        for name in shared:
            if compare(name, a[name], b[name], lower, args.threshold,
                       abs_slack):
                failures += 1
        for name in only_old:
            print("  %-58s only in %s (skipped)" % (name, args.old))
        for name in only_new:
            print("  %-58s only in %s (skipped)" % (name, args.new))

    if failures:
        print("FAIL: %d kernel(s) regressed more than %.0f%%"
              % (failures, args.threshold))
        return 1
    print("OK: no kernel regressed more than %.0f%%" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
